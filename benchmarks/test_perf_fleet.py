"""Fleet-scale memory: aggregation and the virtual client plane.

The fleet plane's claim is that cohort size is a free axis on the
aggregation side: a round over 100k sampled clients folds through the
:class:`StreamingAccumulator` in the same peak memory as a 1k round,
while the dense :class:`UpdateBatch` grows linearly and is only kept
for ``requires_dense`` rules.  This benchmark measures both at
1k/10k/100k synthetic clients (updates generated one at a time from
per-client seeds, so the harness itself never materializes the fleet),
and verifies the streamed FedAvg matches :func:`fedavg_reference`
within the pinned 2-ULP envelope at 1k clients.

The virtual client plane makes the same claim on the *client* side:
clients are descriptors, models come from a bounded pool, so
materializing a fixed training cohort out of a 100k-client fleet peaks
at the same client-plane memory as out of a 1k-client fleet — while
the eager plane (one model clone + one dataset copy per client, the
pre-virtual layout) grows linearly with fleet size.  Both claims are
gated; results land in ``BENCH_fleet.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time
import tracemalloc

import numpy as np
import pytest

from repro.data.partition import ClientShards
from repro.data.synthetic import synthetic_tabular
from repro.fl.aggregation import (
    StreamingAccumulator,
    UpdateBatch,
    fedavg_reference,
)
from repro.fl.config import FLConfig
from repro.fl.virtual import VirtualClientFleet
from repro.models.fcnn import build_fcnn
from repro.nn.store import WeightStore
from repro.privacy.defenses.make import make_defense_for_config

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fleet.json"

STREAM_COUNTS = (1_000, 10_000, 100_000)
DENSE_COUNTS = (1_000, 10_000)  # 100k dense would be ~2.4 GB: the point

VIRTUAL_COUNTS = (1_000, 10_000, 100_000)
EAGER_COUNTS = (1_000, 2_000)  # 100k eager is the multi-GB failure mode
COHORT = 64          # clients actually trained per measured round
SHARD_SIZE = 16      # samples per client shard


def _merge_output(benchmark: str, new_entries: list[dict],
                  replace_paths: set[str]) -> None:
    """Merge one section's entries into ``BENCH_fleet.json``.

    The aggregation and client-plane benches are separate tests that
    share the output file; each rewrites only its own paths so running
    one does not drop the other's numbers.
    """
    entries: list[dict] = []
    if OUTPUT.exists():
        entries = [e for e in json.loads(OUTPUT.read_text())["entries"]
                   if e["path"] not in replace_paths]
    OUTPUT.write_text(json.dumps({
        "benchmark": benchmark,
        "entries": entries + new_entries,
    }, indent=2) + "\n")


def _layout():
    model = build_fcnn(40, 20, np.random.default_rng(0),
                       hidden=(32, 32))
    return model.get_store().layout


def _client_update(layout, client_id: int) -> np.ndarray:
    """One synthetic client's flat update, regenerable from its id."""
    rng = np.random.default_rng((7, client_id))
    return rng.standard_normal(layout.num_params)


def _num_samples(n: int) -> np.ndarray:
    return np.random.default_rng(13).integers(20, 200, size=n)


def _stream_round(layout, n: int):
    """Fold n generated updates; return (result, seconds, peak_bytes,
    accumulator_nbytes)."""
    samples = _num_samples(n)
    total = float(samples.sum())
    tracemalloc.start()
    start = time.perf_counter()
    acc = StreamingAccumulator(layout)
    acc.reset(total_weight=total)
    for i in range(n):
        acc.fold(WeightStore(layout, _client_update(layout, i)),
                 weight=float(samples[i]))
    result = acc.drain()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak, acc.nbytes


def _dense_round(layout, n: int):
    """Collect n generated updates densely; return (seconds,
    peak_bytes, batch_nbytes)."""
    tracemalloc.start()
    start = time.perf_counter()
    batch = UpdateBatch(layout, capacity=n, client_cap=n)
    for i in range(n):
        batch.add(WeightStore(layout, _client_update(layout, i)))
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, batch.nbytes


@pytest.mark.bench
def test_streaming_memory_flat_dense_linear():
    layout = _layout()
    entries = []

    stream_peaks = {}
    for n in STREAM_COUNTS:
        result, seconds, peak, acc_nbytes = _stream_round(layout, n)
        stream_peaks[n] = peak
        entries.append({
            "path": "streaming", "clients": n,
            "params": layout.num_params,
            "round_seconds": round(seconds, 4),
            "peak_mib": round(peak / 2**20, 3),
            "state_mib": round(acc_nbytes / 2**20, 3),
        })
        if n == STREAM_COUNTS[0]:
            reference_result = result

    dense_nbytes = {}
    for n in DENSE_COUNTS:
        seconds, peak, nbytes = _dense_round(layout, n)
        dense_nbytes[n] = nbytes
        entries.append({
            "path": "dense", "clients": n,
            "params": layout.num_params,
            "round_seconds": round(seconds, 4),
            "peak_mib": round(peak / 2**20, 3),
            "state_mib": round(nbytes / 2**20, 3),
        })

    # exactness: streamed FedAvg at 1k clients vs the nested oracle
    n0 = STREAM_COUNTS[0]
    samples = [int(s) for s in _num_samples(n0)]
    nested = [
        WeightStore(layout, _client_update(layout, i)).to_layers()
        for i in range(n0)
    ]
    oracle = fedavg_reference(nested, samples)
    np.testing.assert_array_almost_equal_nulp(
        reference_result.buffer,
        WeightStore.from_layers(oracle, layout).buffer, nulp=2)

    _merge_output("fleet scale: aggregation and client-plane memory",
                  entries, {"streaming", "dense"})

    print()
    print(f"{'path':<12}{'clients':>9}{'seconds':>10}"
          f"{'peak MiB':>11}{'state MiB':>11}")
    for e in entries:
        print(f"{e['path']:<12}{e['clients']:>9}"
              f"{e['round_seconds']:>10.3f}{e['peak_mib']:>11.2f}"
              f"{e['state_mib']:>11.2f}")

    lo, hi = STREAM_COUNTS[0], STREAM_COUNTS[-1]
    assert stream_peaks[hi] <= 1.1 * stream_peaks[lo], (
        f"streaming peak must stay flat (within 10%) from {lo} to "
        f"{hi} clients: {stream_peaks[lo]} -> {stream_peaks[hi]} bytes")
    growth = dense_nbytes[DENSE_COUNTS[1]] / dense_nbytes[DENSE_COUNTS[0]]
    expected = DENSE_COUNTS[1] / DENSE_COUNTS[0]
    assert growth >= 0.8 * expected, (
        f"dense batch memory should grow ~linearly "
        f"({expected}x expected, measured {growth:.1f}x)")


def _fleet_fixture(n: int):
    """Members pool, packed shards and a shard list for an n-client
    fleet.  Shards index into one small shared pool (overlap is fine —
    this measures the client plane, not partition statistics), so the
    fixture itself stays out of the traced region's way."""
    members = synthetic_tabular(np.random.default_rng(5), 256, 40, 20,
                                noise=0.3, name="bench")
    base = np.random.default_rng(11).integers(
        0, len(members), size=(n, SHARD_SIZE))
    shard_list = [base[i] for i in range(n)]
    return members, shard_list, ClientShards.pack(shard_list)


def _virtual_round(template, n: int):
    """Materialize a COHORT-client training round out of an n-client
    virtual fleet; return (seconds, peak_bytes, live_models).

    Tracing starts after members/shards exist: those are the data
    plane's O(total samples) term, shared with the eager layout.  The
    traced region is what the virtual plane claims is O(pool + cohort):
    fleet construction, cohort materialization (binds + lazy subsets)
    and the personal-weights registry rows the cohort leaves behind.
    """
    members, _, shards = _fleet_fixture(n)
    config = FLConfig(num_clients=n, rounds=1, seed=0,
                      max_materialized=8)
    defense = make_defense_for_config("none", config)
    cohort = list(range(0, n, max(1, n // COHORT)))[:COHORT]
    tracemalloc.start()
    start = time.perf_counter()
    fleet = VirtualClientFleet(members, shards, template, config,
                               defense)
    for client_id in cohort:
        client = fleet.materialize(client_id)
        data = client.data  # the round's lazy, transient subset
        fleet.registry.put(client_id, client.model.weights.buffer)
        del data
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, fleet.live_models


def _eager_round(template, n: int):
    """The pre-virtual layout: one model clone and one eagerly copied
    dataset subset per client, all simultaneously live.  Return
    (seconds, peak_bytes)."""
    members, shard_list, _ = _fleet_fixture(n)
    tracemalloc.start()
    start = time.perf_counter()
    clients = [(template.clone(), members.subset(shard_list[i]))
               for i in range(n)]
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del clients
    return seconds, peak


@pytest.mark.bench
def test_client_plane_memory_flat_eager_linear():
    template = build_fcnn(40, 20, np.random.default_rng(0),
                          hidden=(32, 32))
    entries = []

    virtual_peaks = {}
    for n in VIRTUAL_COUNTS:
        seconds, peak, live = _virtual_round(template, n)
        virtual_peaks[n] = peak
        entries.append({
            "path": "virtual-clients", "clients": n,
            "params": template.weight_layout().num_params,
            "round_seconds": round(seconds, 4),
            "peak_mib": round(peak / 2**20, 3),
            "live_models": live, "cohort": COHORT,
        })
        assert live <= 8, f"pool must stay bounded, got {live} models"

    eager_peaks = {}
    for n in EAGER_COUNTS:
        seconds, peak = _eager_round(template, n)
        eager_peaks[n] = peak
        entries.append({
            "path": "eager-clients", "clients": n,
            "params": template.weight_layout().num_params,
            "round_seconds": round(seconds, 4),
            "peak_mib": round(peak / 2**20, 3),
            "live_models": n, "cohort": COHORT,
        })

    _merge_output("fleet scale: aggregation and client-plane memory",
                  entries, {"virtual-clients", "eager-clients"})

    print()
    print(f"{'path':<16}{'clients':>9}{'seconds':>10}"
          f"{'peak MiB':>11}{'live':>7}")
    for e in entries:
        print(f"{e['path']:<16}{e['clients']:>9}"
              f"{e['round_seconds']:>10.3f}{e['peak_mib']:>11.2f}"
              f"{e['live_models']:>7}")

    lo, hi = VIRTUAL_COUNTS[0], VIRTUAL_COUNTS[-1]
    assert virtual_peaks[hi] <= 1.2 * virtual_peaks[lo], (
        f"virtual client-plane peak must stay flat (within 20%) from "
        f"{lo} to {hi} clients: "
        f"{virtual_peaks[lo]} -> {virtual_peaks[hi]} bytes")
    growth = eager_peaks[EAGER_COUNTS[1]] / eager_peaks[EAGER_COUNTS[0]]
    expected = EAGER_COUNTS[1] / EAGER_COUNTS[0]
    assert growth >= 0.8 * expected, (
        f"eager client plane should grow ~linearly "
        f"({expected}x expected, measured {growth:.1f}x)")


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q"])
