"""Fig. 8 — privacy vs utility under different non-IID settings
(GTSRB, Dirichlet alpha in {0.8, 2, 5, inf}).

Paper shape: DINAR's protection is independent of the distribution
(50% everywhere) while keeping the best accuracy among defenses; lower
alpha (more non-IID) lowers everyone's utility.
"""

import math

from benchmarks.conftest import emit
from repro.bench.reporting import format_table

ALPHAS = [0.8, 2.0, 5.0, math.inf]
DEFENSES = ["none", "wdp", "cdp", "ldp", "dinar"]


def test_fig8_noniid(cells, results_dir, benchmark):
    def regenerate():
        out = {}
        for alpha in ALPHAS:
            for name in DEFENSES:
                out[(alpha, name)] = cells.get(
                    "gtsrb", name, attack="yeom", dirichlet_alpha=alpha)
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for alpha in ALPHAS:
        for name in DEFENSES:
            r = results[(alpha, name)]
            rows.append([
                "inf (IID)" if math.isinf(alpha) else alpha, name,
                f"{100 * r.client_accuracy:.1f}",
                f"{100 * r.local_auc:.1f}",
            ])
    table = format_table(
        ["alpha", "defense", "client acc %", "local AUC %"],
        rows, title="Fig.8 non-IID sweep - gtsrb")
    emit(results_dir, "fig8_noniid", table)

    # DINAR's protection is independent of the non-IID level
    for alpha in ALPHAS:
        assert results[(alpha, "dinar")].local_auc < 0.58
    # utility: the IID setting is at least as good as the most skewed
    # one for the undefended model
    assert results[(math.inf, "none")].client_accuracy \
        >= results[(0.8, "none")].client_accuracy - 0.02
    # Among defenses that actually protect (AUC near optimal), DINAR
    # reaches the best accuracy at every alpha.  WDP is excluded when
    # it fails to protect — high accuracy at a leaky AUC is not a
    # competing trade-off point (the paper's Fig. 8 shows the same:
    # WDP tracks no-defense on both axes).
    for alpha in ALPHAS:
        dinar_acc = results[(alpha, "dinar")].client_accuracy
        for name in ("wdp", "cdp", "ldp"):
            competitor = results[(alpha, name)]
            if competitor.local_auc < 0.58:
                assert dinar_acc >= competitor.client_accuracy - 0.05
