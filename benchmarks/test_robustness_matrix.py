"""Robust-aggregation matrix: aggregators x client behaviors x DINAR.

Runs the robustness plane end to end over the full scenario matrix
{fedavg, trimmed_mean, coordinate_median, clustered} x {honest,
25% sign-flip byzantine, 25% label-flip} x {none, dinar} and writes
``BENCH_robustness.json`` at the repo root.

Gated claims (the robustness plane's headline numbers):

* plain FedAvg collapses under 25% sign-flip byzantine clients
  (degrades by far more than 5 accuracy points);
* ``coordinate_median`` under the same attack stays within 5 points of
  the honest-FedAvg baseline;
* ``clustered`` (norm clustering) filters the actual adversaries under
  the plain-defense byzantine cells.

The DINAR x robust-aggregator cells answer the question the paper
never asked: does DINAR's obfuscated layer *look* byzantine to a
robustness filter?  Measured answer (reported in the JSON, not
hard-gated — it is an empirical interaction): no cell filters honest
DINAR clients, because *every* client carries an obfuscated layer and
the noise inflates all update norms uniformly — but for the same
reason the norm-clustering filter loses its discriminative power and
stops catching real byzantine clients, so composing DINAR with
robustness filters degrades robustness rather than utility.  Global
accuracy is meaningless under DINAR (the global model's sensitive
layer is noise by design); the DINAR cells report mean personalized
client accuracy instead.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.models.fcnn import build_fcnn
from repro.privacy.defenses.make import make_defense_for_config

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_robustness.json"

NUM_CLIENTS = 8
ROUNDS = 6
LOCAL_EPOCHS = 2
NUM_SAMPLES = 2000
INPUT_DIM = 24
NUM_CLASSES = 5
HIDDEN = (32,)

AGGREGATORS = ("fedavg", "trimmed_mean", "coordinate_median",
               "clustered")
BEHAVIORS = (("honest", "none", 0.0),
             ("byzantine25", "byzantine", 0.25),
             ("label_flip25", "label_flip", 0.25))
DEFENSES = ("none", "dinar")


def _factory(rng: np.random.Generator):
    return build_fcnn(INPUT_DIM, NUM_CLASSES, rng, hidden=HIDDEN)


def _run_cell(aggregator: str, adversary: str, fraction: float,
              defense_name: str) -> dict:
    rng = np.random.default_rng(0)
    dataset = synthetic_tabular(rng, NUM_SAMPLES, INPUT_DIM,
                                NUM_CLASSES, noise=0.25,
                                name="bench-robustness")
    split = split_for_membership(dataset, rng)
    config = FLConfig(num_clients=NUM_CLIENTS, rounds=ROUNDS,
                      local_epochs=LOCAL_EPOCHS, lr=0.05,
                      batch_size=32, seed=0, eval_every=ROUNDS,
                      aggregator=aggregator, adversary=adversary,
                      adversary_fraction=fraction)
    defense = make_defense_for_config(defense_name, config)
    sim = FederatedSimulation(split, _factory, config, defense)
    sim.run()
    report = sim.cost_meter.report
    adversaries = sorted(sim.behavior.adversaries)
    record = sim.history.records[-1]
    return {
        "aggregator": aggregator,
        "behavior": adversary,
        "adversary_fraction": fraction,
        "defense": defense_name,
        "global_accuracy": round(sim.history.final_global_accuracy, 4),
        "client_accuracy": round(sim.history.final_client_accuracy, 4),
        "adversaries": adversaries,
        "filtered_client_rounds": report.clients_filtered,
        "last_round_filtered": record.filtered,
    }


@pytest.mark.bench
def test_robustness_matrix():
    cells = {}
    for defense_name in DEFENSES:
        for aggregator in AGGREGATORS:
            for label, adversary, fraction in BEHAVIORS:
                key = f"{aggregator}/{label}/{defense_name}"
                cells[key] = _run_cell(aggregator, adversary, fraction,
                                       defense_name)

    honest = cells["fedavg/honest/none"]["global_accuracy"]
    fedavg_byz = cells["fedavg/byzantine25/none"]["global_accuracy"]
    median_byz = \
        cells["coordinate_median/byzantine25/none"]["global_accuracy"]
    clustered_cell = cells["clustered/byzantine25/none"]

    # The DINAR-looks-byzantine question, measured:
    dinar_honest_filtered = sum(
        cells[f"{agg}/honest/dinar"]["filtered_client_rounds"]
        for agg in AGGREGATORS)
    dinar_byz_filtered = \
        cells["clustered/byzantine25/dinar"]["filtered_client_rounds"]
    plain_byz_filtered = clustered_cell["filtered_client_rounds"]

    headline = {
        "honest_fedavg_accuracy": honest,
        "byzantine_fedavg_accuracy": fedavg_byz,
        "byzantine_coordinate_median_accuracy": median_byz,
        "fedavg_degradation": round(honest - fedavg_byz, 4),
        "coordinate_median_degradation": round(honest - median_byz, 4),
        # Is DINAR's obfuscated layer filtered as byzantine?  Every
        # client obfuscates, so norms inflate uniformly: no honest
        # DINAR client-round is filtered...
        "dinar_obfuscation_filtered_as_byzantine":
            dinar_honest_filtered > 0,
        "dinar_honest_filtered_client_rounds": dinar_honest_filtered,
        # ...but the uniform noise also camouflages real byzantine
        # clients from the norm filter (vs the plain-defense cell):
        "clustered_filtered_under_plain_byzantine": plain_byz_filtered,
        "clustered_filtered_under_dinar_byzantine": dinar_byz_filtered,
    }

    OUTPUT.write_text(json.dumps({
        "benchmark": "robust aggregation x adversarial client zoo "
                     "x DINAR",
        "clients": NUM_CLIENTS,
        "rounds": ROUNDS,
        "headline": headline,
        "cells": cells,
    }, indent=2) + "\n")

    print()
    for key, cell in cells.items():
        print(f"{key:42s} global={cell['global_accuracy']:.3f} "
              f"client={cell['client_accuracy']:.3f} "
              f"filtered={cell['filtered_client_rounds']}")

    # Gate 1: 25% sign-flip byzantine clients wreck plain FedAvg...
    assert honest - fedavg_byz > 0.05, \
        f"expected fedavg to degrade by > 5 points under byzantine " \
        f"clients, got {honest:.3f} -> {fedavg_byz:.3f}"
    # ...and by more than they dent coordinate_median.
    assert honest - fedavg_byz > honest - median_byz, \
        "fedavg should degrade more than coordinate_median"
    # Gate 2: coordinate_median stays within 5 points of honest fedavg.
    assert honest - median_byz <= 0.05, \
        f"coordinate_median under byzantine should stay within 5 " \
        f"points of the honest baseline {honest:.3f}, " \
        f"got {median_byz:.3f}"
    # Gate 3: norm clustering filters the actual adversaries in the
    # plain-defense byzantine cell.
    assert set(clustered_cell["last_round_filtered"]) == \
        set(clustered_cell["adversaries"]), \
        f"clustered should filter exactly the adversaries " \
        f"{clustered_cell['adversaries']}, " \
        f"filtered {clustered_cell['last_round_filtered']}"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
