"""Fig. 1 — per-layer member/non-member gradient divergence on
unprotected FL models (GTSRB, CelebA, Texas100, Purchase100).

Paper shape: every model has a layer whose divergence clearly exceeds
the rest (the paper finds the penultimate layer).  Here we reproduce
the analysis (JS divergence between member and non-member gradient
distributions per layer) and assert the structural claims: a trained
model shows much higher divergence than an untrained one, and the
profile has a clear maximum.  Which index wins is reported — in this
synthetic substrate the peak sits in the mid-to-late layers rather
than strictly at the penultimate one (see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from repro.bench.harness import make_model_factory
from repro.bench.reporting import format_table
from repro.core.sensitivity import layer_divergences

DATASETS = ["gtsrb", "celeba", "texas100", "purchase100"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig1_layer_divergence(dataset, cells, results_dir, benchmark):
    result = cells.get(dataset, "none", attack="yeom")
    sim = result.simulation

    def analyze():
        model = sim.global_model()
        split = sim.split
        trained = layer_divergences(
            model, split.members.x, split.members.y,
            split.nonmembers.x, split.nonmembers.y,
            rng=np.random.default_rng(0))
        fresh_model = make_model_factory(dataset)(
            np.random.default_rng(99))
        fresh = layer_divergences(
            fresh_model, split.members.x, split.members.y,
            split.nonmembers.x, split.nonmembers.y,
            rng=np.random.default_rng(0))
        return trained, fresh

    trained, fresh = benchmark.pedantic(analyze, rounds=1, iterations=1)

    rows = [
        [idx, name, f"{div:.4f}", f"{fresh.divergences[idx]:.4f}"]
        for idx, name, div in trained.as_rows()
    ]
    table = format_table(
        ["layer", "name", "JS divergence (trained)",
         "JS divergence (untrained)"],
        rows,
        title=(f"Fig.1 layer-level divergence - {dataset} "
               f"(peak at layer {trained.most_sensitive_layer} of "
               f"{len(trained.layer_names)})"))
    emit(results_dir, f"fig1_{dataset}", table)

    # Where the dataset actually leaks (no-defense local AUC well above
    # chance), the trained model's divergence profile must show it:
    # the peak clearly exceeds the untrained model's bias-corrected
    # noise floor and some layer stands out.  GTSRB barely leaks in
    # the paper too (53% AUC), so it is exempt from the strict check.
    if result.local_auc > 0.60:
        assert trained.divergences.max() >= fresh.divergences.max()
        assert trained.divergences.max() \
            > 1.3 * max(trained.divergences.min(), 1e-6)
    else:
        assert trained.divergences.max() >= 0.0  # profile still valid
