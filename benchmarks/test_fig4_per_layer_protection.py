"""Fig. 4 — fine-grained analysis on CelebA: (a) per-layer
member/non-member divergence, (b) attack AUC when obfuscating each
layer in turn.

Paper shape: obfuscating the most leakage-prone (late) layer reaches
the optimal ~50% AUC.  In the paper, early-layer obfuscation leaves
residual leakage (~57%); in this substrate full-scale random values
destroy the forward pass wherever they are injected, so every single
layer protects — but utility strongly differentiates: obfuscating late
layers preserves accuracy, obfuscating early layers costs it (which is
the paper's utility-side argument for the penultimate layer).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.core.dinar import DINAR
from repro.core.sensitivity import layer_divergences

PAPER_NOTE = "paper: only the late (penultimate) layer reaches 50%"


def test_fig4_per_layer_protection(cells, results_dir, benchmark):
    base = cells.get("celeba", "none", attack="yeom")
    num_layers = base.simulation.global_model().num_trainable_layers

    def regenerate():
        per_layer = {}
        for p in range(num_layers):
            per_layer[p] = cells.get(
                "celeba", DINAR(private_layer=p), attack="yeom")
        sim = base.simulation
        split = sim.split
        sens = layer_divergences(
            sim.global_model(), split.members.x, split.members.y,
            split.nonmembers.x, split.nonmembers.y,
            rng=np.random.default_rng(0))
        return per_layer, sens

    per_layer, sens = benchmark.pedantic(regenerate, rounds=1,
                                         iterations=1)

    rows = []
    for p in range(num_layers):
        r = per_layer[p]
        rows.append([
            p, sens.layer_names[p], f"{sens.divergences[p]:.4f}",
            f"{100 * r.local_auc:.1f}", f"{100 * r.client_accuracy:.1f}",
        ])
    rows.append(["-", "no defense", "-",
                 f"{100 * base.local_auc:.1f}",
                 f"{100 * base.client_accuracy:.1f}"])
    table = format_table(
        ["obfuscated layer", "name", "divergence (a)",
         "local AUC % (b)", "client acc %"],
        rows, title=f"Fig.4 per-layer protection - celeba ({PAPER_NOTE})")
    emit(results_dir, "fig4_per_layer", table)

    # obfuscating any single layer improves on the baseline...
    for p in range(num_layers):
        assert per_layer[p].local_auc < base.local_auc
    # ...and the late layers protect at (near-)optimal AUC
    assert per_layer[num_layers - 2].local_auc < 0.58
    # utility-side: a late layer is at least as cheap as the first one
    assert per_layer[num_layers - 2].client_accuracy \
        >= per_layer[0].client_accuracy - 0.05


def test_fig4_utility_prefers_late_layers_purchase100(cells, results_dir,
                                                      benchmark):
    """The same sweep on the 7-layer FCNN, where the utility gradient
    across layers is pronounced."""
    def regenerate():
        return {p: cells.get("purchase100", DINAR(private_layer=p),
                             attack="yeom")
                for p in (0, 5)}

    per_layer = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    table = "\n".join(
        f"obfuscate layer {p}: acc={100 * r.client_accuracy:.1f}% "
        f"l_auc={100 * r.local_auc:.1f}%"
        for p, r in sorted(per_layer.items()))
    emit(results_dir, "fig4_purchase100_utility", table)
    # obfuscating the penultimate layer costs far less accuracy than
    # obfuscating the first layer
    assert per_layer[5].client_accuracy > per_layer[0].client_accuracy
