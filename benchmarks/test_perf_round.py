"""Round wall-clock + IPC volume: serial vs pickle-pipe vs shm.

Times full federated rounds (20 clients) three ways — the serial
reference executor, a 4-worker :class:`ParallelExecutor` on the pickle
transport, and the same pool on the zero-copy shared-memory transport
— verifies all three end bitwise identical, and writes
``BENCH_round.json`` at the repo root.

Two classes of gate:

* **IPC volume** (asserted everywhere, even on one core): the shm
  transport must move the weight plane out of the pool pipe — at
  least 100x fewer pickled bytes per round than the pickle transport
  at this model size, and a per-client pickled payload that is
  O(descriptor), not O(num_params).
* **Wall clock** (gated on >= 4 physical cores, like before): the shm
  executor must clear the >= 2x floor over serial.  The JSON records
  the core count so a number measured on constrained hardware is
  interpretable.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.models.fcnn import build_fcnn
from repro.nn.store import as_store

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_round.json"

NUM_CLIENTS = 20
WORKERS = 4
ROUNDS = 3
LOCAL_EPOCHS = 5
NUM_SAMPLES = 20_000

INPUT_DIM = 100
NUM_CLASSES = 10
HIDDEN = (256, 256)

#: The shm transport's whole point: per-client pipe payloads are
#: descriptors.  Generous bound — a descriptor task/result pair is a
#: few hundred bytes; a pickled weight vector here is ~750 KB.
DESCRIPTOR_BYTES_CAP = 8192


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _factory(rng: np.random.Generator):
    return build_fcnn(INPUT_DIM, NUM_CLASSES, rng, hidden=HIDDEN)


def _timed_run(split, workers: int, ipc: str = "shm"):
    config = FLConfig(num_clients=NUM_CLIENTS, rounds=ROUNDS,
                      local_epochs=LOCAL_EPOCHS, lr=0.05, batch_size=64,
                      seed=0, eval_every=ROUNDS, workers=workers,
                      ipc=ipc)
    sim = FederatedSimulation(split, _factory, config)
    # Spin the pool (and shm segments) up outside the timed region:
    # fork + initializer + segment creation is a one-off, not a
    # per-round cost.
    sim.executor.warm_up()
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    final = as_store(sim.server.global_weights).buffer.copy()
    report = sim.cost_meter.report
    sim.executor.close()
    return elapsed, final, report


@pytest.mark.bench
def test_parallel_round_speedup():
    rng = np.random.default_rng(0)
    dataset = synthetic_tabular(rng, NUM_SAMPLES, INPUT_DIM, NUM_CLASSES,
                                noise=0.2, name="bench-round")
    split = split_for_membership(dataset, rng)
    cores = _available_cores()

    serial_seconds, serial_final, _ = _timed_run(split, workers=0)
    pickle_seconds, pickle_final, pickle_report = _timed_run(
        split, workers=WORKERS, ipc="pickle")
    shm_seconds, shm_final, shm_report = _timed_run(
        split, workers=WORKERS, ipc="shm")

    speedup_shm = serial_seconds / shm_seconds
    speedup_pickle = serial_seconds / pickle_seconds
    pickled_per_round_pickle = \
        pickle_report.ipc_bytes_pickled / ROUNDS
    pickled_per_round_shm = shm_report.ipc_bytes_pickled / ROUNDS
    shared_per_round_shm = shm_report.ipc_bytes_shared / ROUNDS
    reduction = pickled_per_round_pickle \
        / max(1, pickled_per_round_shm)
    pickled_per_client_shm = shm_report.ipc_bytes_pickled \
        / max(1, shm_report.clients_completed)

    OUTPUT.write_text(json.dumps({
        "benchmark": "FL round: serial vs pickle pipe vs shm IPC",
        "clients": NUM_CLIENTS,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "available_cores": cores,
        "serial_seconds": round(serial_seconds, 4),
        "pickle_seconds": round(pickle_seconds, 4),
        "shm_seconds": round(shm_seconds, 4),
        "speedup_pickle": round(speedup_pickle, 2),
        "speedup_shm": round(speedup_shm, 2),
        "ipc_pickled_bytes_per_round_pickle":
            int(pickled_per_round_pickle),
        "ipc_pickled_bytes_per_round_shm":
            int(pickled_per_round_shm),
        "ipc_shared_bytes_per_round_shm":
            int(shared_per_round_shm),
        "ipc_pickled_bytes_per_client_shm":
            int(pickled_per_client_shm),
        "ipc_pickled_reduction": round(reduction, 1),
    }, indent=2) + "\n")

    print()
    print(f"serial  {serial_seconds:8.3f}s")
    print(f"pickle  {pickle_seconds:8.3f}s  "
          f"({pickled_per_round_pickle / 2**20:.1f} MiB/round pickled)")
    print(f"shm     {shm_seconds:8.3f}s  "
          f"({pickled_per_round_shm / 2**10:.1f} KiB/round pickled, "
          f"{shared_per_round_shm / 2**20:.1f} MiB/round shared)")
    print(f"speedup {speedup_shm:8.2f}x shm, "
          f"{speedup_pickle:.2f}x pickle "
          f"({WORKERS} workers, {cores} cores); "
          f"pickled-bytes reduction {reduction:.0f}x")

    # Determinism is asserted unconditionally — it must hold anywhere.
    assert np.array_equal(serial_final, pickle_final), \
        "pickle-parallel run diverged from the serial reference"
    assert np.array_equal(serial_final, shm_final), \
        "shm-parallel run diverged from the serial reference"

    # So is the IPC-volume contract: it is hardware-independent.
    assert reduction >= 100.0, \
        f"shm transport still pickles too much: only {reduction:.0f}x " \
        f"fewer bytes per round than the pickle pipe (need >= 100x)"
    assert pickled_per_client_shm <= DESCRIPTOR_BYTES_CAP, \
        f"shm per-client pipe payload is {pickled_per_client_shm:.0f} " \
        f"bytes — not O(descriptor) (cap {DESCRIPTOR_BYTES_CAP})"

    if cores < WORKERS:
        pytest.skip(f"only {cores} core(s) available; the >= 2x "
                    f"speedup floor needs {WORKERS}")
    assert speedup_shm >= 2.0, \
        f"expected >= 2x with {WORKERS} workers on {cores} cores, " \
        f"measured {speedup_shm:.2f}x"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
