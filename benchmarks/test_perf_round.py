"""Round wall-clock: serial client loop vs the parallel executor.

Times full federated rounds (20 clients) under the serial reference
executor and under a 4-worker :class:`ParallelExecutor`, verifies the
two runs end bitwise identical, and writes ``BENCH_round.json`` at the
repo root.

The speedup floor is only asserted where it is physically possible:
the executor cannot beat the serial loop on a single core, so the
``>= 2x`` check is gated on the CPUs actually available to this
process (CI runners have >= 4).  The JSON records the core count so a
number measured on constrained hardware is interpretable.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.models.fcnn import build_fcnn
from repro.nn.store import as_store

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_round.json"

NUM_CLIENTS = 20
WORKERS = 4
ROUNDS = 3
LOCAL_EPOCHS = 5
NUM_SAMPLES = 20_000

INPUT_DIM = 100
NUM_CLASSES = 10
HIDDEN = (256, 256)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _factory(rng: np.random.Generator):
    return build_fcnn(INPUT_DIM, NUM_CLASSES, rng, hidden=HIDDEN)


def _timed_run(split, workers: int):
    config = FLConfig(num_clients=NUM_CLIENTS, rounds=ROUNDS,
                      local_epochs=LOCAL_EPOCHS, lr=0.05, batch_size=64,
                      seed=0, eval_every=ROUNDS, workers=workers)
    sim = FederatedSimulation(split, _factory, config)
    # Spin the pool up outside the timed region: fork + initializer
    # cost is a one-off, not a per-round cost.
    sim.executor.warm_up()
    start = time.perf_counter()
    history = sim.run()
    elapsed = time.perf_counter() - start
    final = as_store(sim.server.global_weights).buffer.copy()
    sim.executor.close()
    return elapsed, final, history


@pytest.mark.bench
def test_parallel_round_speedup():
    rng = np.random.default_rng(0)
    dataset = synthetic_tabular(rng, NUM_SAMPLES, INPUT_DIM, NUM_CLASSES,
                                noise=0.2, name="bench-round")
    split = split_for_membership(dataset, rng)
    cores = _available_cores()

    serial_seconds, serial_final, _ = _timed_run(split, workers=0)
    parallel_seconds, parallel_final, _ = _timed_run(split,
                                                     workers=WORKERS)
    speedup = serial_seconds / parallel_seconds

    OUTPUT.write_text(json.dumps({
        "benchmark": "FL round: serial client loop vs process pool",
        "clients": NUM_CLIENTS,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "available_cores": cores,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(speedup, 2),
    }, indent=2) + "\n")

    print()
    print(f"serial   {serial_seconds:8.3f}s")
    print(f"parallel {parallel_seconds:8.3f}s  "
          f"({WORKERS} workers, {cores} cores)")
    print(f"speedup  {speedup:8.2f}x")

    # Determinism is asserted unconditionally — it must hold anywhere.
    assert np.array_equal(serial_final, parallel_final), \
        "parallel run diverged from the serial reference"

    if cores < WORKERS:
        pytest.skip(f"only {cores} core(s) available; the >= 2x "
                    f"speedup floor needs {WORKERS}")
    assert speedup >= 2.0, \
        f"expected >= 2x with {WORKERS} workers on {cores} cores, " \
        f"measured {speedup:.2f}x"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
