"""Segment-plane benchmark: LaDP allocation + obfuscation-aware
distances.  Writes ``BENCH_segments.json`` at the repo root.

Part A — layer-wise adaptive DP under label skew (Dirichlet
alpha=0.5), at one matched total epsilon: warm up an unprotected run,
measure per-layer Jensen-Shannon divergences
(:func:`repro.core.sensitivity.layer_divergences`), then compare
LaDP with sensitivity-weighted epsilon shares against uniform shares
over several seeds.  Gated claim: the sensitivity-weighted allocation
is on the better side of the privacy-utility frontier — strictly
higher mean accuracy at equal-or-lower mean attack AUC.

Part B — the DINAR-looks-byzantine interaction, resolved: under
DINAR's obfuscation every whole-vector distance is dominated by the
obfuscated layer's noise, so norm clustering goes blind
(``BENCH_robustness.json`` measures that).  Gated claim: masking the
protected segment out of the clustering distance
(``distance_mask='obfuscated'``) catches at least as many true
byzantine client-rounds under DINAR as whole-vector clustering
catches with no defense at all — the mask fully de-camouflages.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.core.sensitivity import layer_divergences
from repro.data.partition import split_for_membership
from repro.data.synthetic import synthetic_tabular
from repro.fl.config import FLConfig
from repro.fl.simulation import FederatedSimulation
from repro.models.fcnn import build_fcnn
from repro.privacy.attacks.metrics import global_model_auc
from repro.privacy.attacks.threshold import LossThresholdAttack
from repro.privacy.defenses.ladp import LayerwiseDP
from repro.privacy.defenses.make import make_defense_for_config

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_segments.json"

NUM_CLIENTS = 8
ROUNDS = 6
LOCAL_EPOCHS = 2
NUM_SAMPLES = 2000
INPUT_DIM = 24
NUM_CLASSES = 5
HIDDEN = (32,)
DIRICHLET_ALPHA = 0.5

# One matched total budget for both allocations; shares are the only
# difference between the two LaDP arms.
EPSILON = 12.0
DELTA = 1e-5
CLIP_NORM = 3.0
SHARE_FLOOR = 0.0
SEEDS = (0, 1, 2, 3, 4)


def _factory(rng: np.random.Generator):
    return build_fcnn(INPUT_DIM, NUM_CLASSES, rng, hidden=HIDDEN)


def _simulate(defense, seed: int, **cfg_kwargs):
    rng = np.random.default_rng(0)
    dataset = synthetic_tabular(rng, NUM_SAMPLES, INPUT_DIM,
                                NUM_CLASSES, noise=0.25,
                                name="bench-segments")
    split = split_for_membership(dataset, rng)
    cfg_kwargs.setdefault("eval_every", ROUNDS)
    config = FLConfig(num_clients=NUM_CLIENTS, rounds=ROUNDS,
                      local_epochs=LOCAL_EPOCHS, lr=0.05,
                      batch_size=32, seed=seed, **cfg_kwargs)
    if isinstance(defense, str):
        defense = make_defense_for_config(defense, config)
    sim = FederatedSimulation(split, _factory, config, defense,
                              dirichlet_alpha=DIRICHLET_ALPHA)
    sim.run()
    return sim


def _attack_auc(sim, seed: int) -> float:
    return global_model_auc(
        LossThresholdAttack(), sim, max_samples=400,
        rng=np.random.default_rng((seed, 23)))


def _ladp_arm(divergences) -> dict:
    accs, aucs = [], []
    for seed in SEEDS:
        defense = LayerwiseDP(epsilon=EPSILON, delta=DELTA,
                              clip_norm=CLIP_NORM, rounds=ROUNDS,
                              divergences=divergences,
                              share_floor=SHARE_FLOOR)
        sim = _simulate(defense, seed)
        accs.append(sim.history.final_global_accuracy)
        aucs.append(_attack_auc(sim, seed))
    return {
        "accuracy_per_seed": [round(a, 4) for a in accs],
        "auc_per_seed": [round(u, 4) for u in aucs],
        "mean_accuracy": round(float(np.mean(accs)), 4),
        "mean_auc": round(float(np.mean(aucs)), 4),
    }


def _byzantine_cell(defense_name: str, distance_mask: str) -> dict:
    sim = _simulate(defense_name, 0, aggregator="clustered",
                    distance_mask=distance_mask,
                    adversary="byzantine", adversary_fraction=0.25,
                    eval_every=1)
    adversaries = set(sim.behavior.adversaries)
    true_filtered = sum(
        len(adversaries & set(record.filtered))
        for record in sim.history.records)
    return {
        "defense": defense_name,
        "distance_mask": distance_mask,
        "adversaries": sorted(adversaries),
        "true_filtered_client_rounds": true_filtered,
        "filtered_client_rounds":
            sim.cost_meter.report.clients_filtered,
        "client_accuracy":
            round(sim.history.final_client_accuracy, 4),
    }


@pytest.mark.bench
def test_segment_plane():
    # -- Part A: sensitivity-weighted vs uniform epsilon shares -------
    warm = _simulate(None, 0)
    sens = layer_divergences(
        warm.global_model(),
        warm.split.members.x, warm.split.members.y,
        warm.split.nonmembers.x, warm.split.nonmembers.y,
        rng=np.random.default_rng(0))
    divergences = sens.divergences
    uniform = _ladp_arm(None)
    weighted = _ladp_arm(divergences)

    # -- Part B: masked distances vs the DINAR camouflage -------------
    masked_dinar = _byzantine_cell("dinar", "obfuscated")
    plain_baseline = _byzantine_cell("none", "none")
    blind_dinar = _byzantine_cell("dinar", "none")

    report = {
        "benchmark": "segment plane: LaDP allocation + "
                     "obfuscation-aware robust distances",
        "clients": NUM_CLIENTS,
        "rounds": ROUNDS,
        "dirichlet_alpha": DIRICHLET_ALPHA,
        "ladp": {
            "epsilon": EPSILON,
            "delta": DELTA,
            "clip_norm": CLIP_NORM,
            "share_floor": SHARE_FLOOR,
            "seeds": list(SEEDS),
            "warmup_accuracy":
                round(warm.history.final_global_accuracy, 4),
            "layer_divergences":
                [round(float(d), 6) for d in divergences],
            "uniform": uniform,
            "sensitivity_weighted": weighted,
        },
        "distance_mask": {
            "masked_dinar": masked_dinar,
            "plain_baseline": plain_baseline,
            "blind_dinar": blind_dinar,
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    print()
    print(f"LaDP uniform     acc={uniform['mean_accuracy']:.4f} "
          f"auc={uniform['mean_auc']:.4f}")
    print(f"LaDP sensitivity acc={weighted['mean_accuracy']:.4f} "
          f"auc={weighted['mean_auc']:.4f}")
    print(f"true byzantine client-rounds filtered: "
          f"dinar+mask={masked_dinar['true_filtered_client_rounds']} "
          f"plain={plain_baseline['true_filtered_client_rounds']} "
          f"dinar-blind={blind_dinar['true_filtered_client_rounds']}")

    # Gate A: at matched total epsilon under alpha=0.5 label skew, the
    # sensitivity-weighted allocation beats uniform shares on mean
    # accuracy without paying for it in attack AUC.
    assert weighted["mean_accuracy"] > uniform["mean_accuracy"], \
        f"sensitivity-weighted LaDP should beat uniform shares on " \
        f"accuracy at matched epsilon: " \
        f"{weighted['mean_accuracy']} vs {uniform['mean_accuracy']}"
    assert weighted["mean_auc"] <= uniform["mean_auc"] + 0.01, \
        f"sensitivity-weighted LaDP should hold equal-or-lower " \
        f"attack AUC: {weighted['mean_auc']} vs {uniform['mean_auc']}"

    # Gate B: the segment-masked distance catches at least as many
    # true byzantine client-rounds under DINAR as the whole-vector
    # distance catches with no obfuscation in the way.
    assert masked_dinar["true_filtered_client_rounds"] >= \
        plain_baseline["true_filtered_client_rounds"], \
        f"masked clustering under DINAR " \
        f"({masked_dinar['true_filtered_client_rounds']}) should " \
        f"match the unobfuscated baseline " \
        f"({plain_baseline['true_filtered_client_rounds']})"
    # ...and the baseline itself must be non-trivial, or the gate
    # proves nothing.
    assert plain_baseline["true_filtered_client_rounds"] > 0, \
        "plain clustering should catch byzantine clients"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
