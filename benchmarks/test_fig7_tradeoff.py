"""Fig. 7 — privacy vs utility trade-off for local models, per dataset.

Each defense is one point (accuracy%, attack AUC%); the best corner is
bottom-right (high accuracy, 50% AUC).  Paper shape: DINAR sits in the
bottom-right corner on every dataset; DP methods trade accuracy for
privacy; WDP/GC/SA keep accuracy but leak (SA leaks only globally, so
its *local* point is protected).

Reuses the Fig. 6 cells.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import format_table

DEFENSES = ["none", "wdp", "ldp", "cdp", "gc", "sa", "dinar"]
DATASETS = ["purchase100", "cifar10", "cifar100", "speech_commands",
            "celeba", "gtsrb"]


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig7_tradeoff(dataset, cells, results_dir, benchmark):
    def regenerate():
        return {d: cells.get(dataset, d, attack="yeom") for d in DEFENSES}

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for name in DEFENSES:
        acc, auc = results[name].privacy_utility()
        rows.append([name, f"{acc:.1f}", f"{auc:.1f}"])
    table = format_table(
        ["defense", "client accuracy %", "local attack AUC %"],
        rows, title=f"Fig.7 privacy/utility scatter - {dataset}")
    emit(results_dir, f"fig7_{dataset}", table)

    none = results["none"]
    dinar = results["dinar"]
    # DINAR dominates the trade-off: near-optimal AUC at >= baseline-5%
    # accuracy (the paper's bottom-right corner).
    assert dinar.local_auc <= none.local_auc + 0.02
    assert dinar.local_auc < 0.58
    assert dinar.client_accuracy >= none.client_accuracy - 0.05
    # DINAR's trade-off beats every DP method's: no DP point has both
    # better accuracy and better (lower) AUC.
    for dp in ("ldp", "cdp"):
        point = results[dp]
        assert not (point.client_accuracy > dinar.client_accuracy
                    and point.local_auc < dinar.local_auc)
