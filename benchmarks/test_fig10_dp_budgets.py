"""Fig. 10 — LDP under different privacy budgets vs DINAR
(Purchase100).

Paper shape: smaller epsilon (more noise) gives better privacy but
drastically worse accuracy (13% at the budget that reaches 50% AUC);
DINAR reaches the optimum while keeping accuracy near the no-defense
baseline.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import format_table

EPSILONS = [0.05, 0.2, 1.0, 2.2]


def test_fig10_dp_budgets(cells, results_dir, benchmark):
    def regenerate():
        out = {"none": cells.get("purchase100", "none", attack="yeom"),
               "dinar": cells.get("purchase100", "dinar", attack="yeom")}
        for eps in EPSILONS:
            out[eps] = cells.get(
                "purchase100", "ldp", attack="yeom",
                defense_kwargs={"epsilon": eps})
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = [["no defense", "-",
             f"{100 * results['none'].client_accuracy:.1f}",
             f"{100 * results['none'].local_auc:.1f}"]]
    for eps in EPSILONS:
        r = results[eps]
        rows.append([f"ldp eps={eps}", eps,
                     f"{100 * r.client_accuracy:.1f}",
                     f"{100 * r.local_auc:.1f}"])
    rows.append(["dinar", "-",
                 f"{100 * results['dinar'].client_accuracy:.1f}",
                 f"{100 * results['dinar'].local_auc:.1f}"])
    table = format_table(
        ["scenario", "epsilon", "client acc %", "local AUC %"],
        rows, title="Fig.10 DP budget sweep - purchase100")
    emit(results_dir, "fig10_dp_budgets", table)

    # smaller budgets give better privacy...
    assert results[0.05].local_auc <= results[2.2].local_auc + 0.02
    assert results[0.05].local_auc < 0.58
    # ...at a drastic utility cost
    assert results[0.05].client_accuracy \
        < results["none"].client_accuracy / 2
    # DINAR reaches the optimum without that cost
    assert results["dinar"].local_auc < 0.58
    assert results["dinar"].client_accuracy \
        > results[0.05].client_accuracy
