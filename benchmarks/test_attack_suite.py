"""Attacker-strength sweep (extension): does DINAR's ~50% hold against
attackers beyond the paper's?

The paper evaluates against the Shokri shadow-model MIA. A defense
that only fools one attacker is brittle, so this benchmark attacks the
same no-defense / DINAR pair with every implemented black-box
attacker: loss threshold (Yeom), modified entropy (Song & Mittal),
confidence (Salem), shadow models (Shokri), and reference-calibrated
loss (Watson). DINAR must pin *all* of them near 50% on the local
models while each of them beats chance against the undefended run.
"""

from benchmarks.conftest import emit
from repro.bench.harness import build_attack
from repro.bench.reporting import format_table
from repro.privacy.attacks.metrics import local_models_auc

ATTACKS = ["yeom", "entropy", "confidence", "shadow", "calibrated"]


def test_attack_suite(cells, results_dir, benchmark):
    def regenerate():
        baseline = cells.get("purchase100", "none", attack="yeom")
        protected = cells.get("purchase100", "dinar", attack="yeom")
        rows = {}
        for name in ATTACKS:
            attack = build_attack(name, "purchase100",
                                  baseline.simulation.split)
            rows[name] = (
                local_models_auc(attack, baseline.simulation,
                                 max_samples=300),
                local_models_auc(attack, protected.simulation,
                                 max_samples=300),
            )
        return rows

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    table_rows = [
        [name, f"{100 * none_auc:.1f}", f"{100 * dinar_auc:.1f}"]
        for name, (none_auc, dinar_auc) in results.items()
    ]
    table = format_table(
        ["attacker", "no defense local AUC %", "DINAR local AUC %"],
        table_rows,
        title="Attacker sweep - purchase100 (extension)")
    emit(results_dir, "attack_suite", table)

    for name, (none_auc, dinar_auc) in results.items():
        # DINAR holds near the optimum against every attacker
        assert dinar_auc < 0.60, f"{name} breaks DINAR: {dinar_auc}"
    # and the strong attackers genuinely work on the undefended run
    for name in ("yeom", "entropy", "calibrated"):
        assert results[name][0] > 0.65
