"""Table 1 — qualitative comparison of FL privacy-preserving methods:
model privacy / model utility / negligible overhead.

The paper's Table 1 is qualitative; here each implemented method is
scored from the *measured* purchase100 cells: privacy = local AUC
within 8 points of optimal, utility = client accuracy within 10 points
of the no-defense baseline, negligible overhead = per-round train and
aggregation times within 50% of baseline.  Shape to reproduce: DINAR
is the only row with three check marks.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import format_table

DEFENSES = ["wdp", "ldp", "cdp", "gc", "sa", "dinar"]

PAPER = {  # (privacy, utility, negligible overhead) per Table 1
    "wdp": ("no", "yes", "no"),
    "ldp": ("yes", "no", "no"),
    "cdp": ("yes", "no", "no"),
    "gc": ("yes", "yes", "no"),
    "sa": ("yes", "yes", "no"),
    "dinar": ("yes", "yes", "yes"),
}


def test_table1_category_matrix(cells, results_dir, benchmark):
    def regenerate():
        out = {"none": cells.get("purchase100", "none", attack="yeom")}
        for name in DEFENSES:
            out[name] = cells.get("purchase100", name, attack="yeom")
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    base = results["none"]

    def verdicts(result):
        privacy = result.local_auc < 0.58 and result.global_auc < 0.60
        utility = result.client_accuracy \
            >= base.client_accuracy - 0.10
        # Defense-attributable cost, robust to wall-clock noise in the
        # (optimizer-dependent) training loop itself: time spent in the
        # defense's own client hooks, extra server aggregation time,
        # and extra state held alive.
        costs = result.costs
        defense_client = (costs.client_defense_seconds
                          / max(costs.client_train_rounds, 1))
        extra_agg = max(0.0, costs.aggregate_seconds_per_round
                        - base.costs.aggregate_seconds_per_round)
        negligible = (
            defense_client < 0.5 * base.costs.train_seconds_per_round
            and (extra_agg < 2.0 * base.costs.aggregate_seconds_per_round
                 or extra_agg < 0.005)
            and costs.defense_state_bytes < 4 * _model_bytes(result)
        )
        return privacy, utility, negligible

    def _model_bytes(result):
        weights = result.simulation.server.global_weights
        return sum(v.nbytes for layer in weights for v in layer.values())

    rows = []
    measured = {}
    for name in DEFENSES:
        privacy, utility, negligible = verdicts(results[name])
        measured[name] = (privacy, utility, negligible)
        paper = PAPER[name]
        rows.append([
            name,
            paper[0], "yes" if privacy else "no",
            paper[1], "yes" if utility else "no",
            paper[2], "yes" if negligible else "no",
        ])
    table = format_table(
        ["method", "paper privacy", "ours privacy", "paper utility",
         "ours utility", "paper low-cost", "ours low-cost"],
        rows, title="Table 1: qualitative method comparison "
                    "(measured on purchase100)")
    emit(results_dir, "table1_categories", table)

    # the headline: DINAR scores yes on all three axes
    assert measured["dinar"] == (True, True, True)
    # and no DP method does
    assert measured["ldp"] != (True, True, True)
    assert measured["cdp"] != (True, True, True)
