"""Fig. 9 — DINAR under different numbers of FL clients (Purchase100).

Paper shape: fewer clients => more data per client => higher client
accuracy; DINAR counters the MIA at 50% AUC independently of the
number of clients.
"""

from benchmarks.conftest import emit
from repro.bench.harness import default_config
from repro.bench.reporting import format_table
from repro.fl.config import FLConfig

CLIENT_COUNTS = [5, 10, 20]


def _config(num_clients):
    base = default_config("purchase100")
    return FLConfig(num_clients=num_clients, rounds=base.rounds,
                    local_epochs=base.local_epochs, lr=base.lr,
                    batch_size=base.batch_size, seed=base.seed,
                    eval_every=base.rounds)


def test_fig9_client_scaling(cells, results_dir, benchmark):
    def regenerate():
        out = {}
        for n in CLIENT_COUNTS:
            for name in ("none", "dinar"):
                out[(n, name)] = cells.get(
                    "purchase100", name, attack="yeom",
                    config=_config(n))
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for n in CLIENT_COUNTS:
        for name in ("none", "dinar"):
            r = results[(n, name)]
            rows.append([n, name, f"{100 * r.local_auc:.1f}",
                         f"{100 * r.client_accuracy:.1f}"])
    table = format_table(
        ["clients", "defense", "local AUC %", "client acc %"],
        rows, title="Fig.9 client-count sweep - purchase100")
    emit(results_dir, "fig9_clients", table)

    # DINAR counters the MIA independently of the client count
    for n in CLIENT_COUNTS:
        assert results[(n, "dinar")].local_auc < 0.58
    # fewer clients => more data each => higher accuracy (both arms)
    for name in ("none", "dinar"):
        accs = [results[(n, name)].client_accuracy
                for n in CLIENT_COUNTS]
        assert accs[0] > accs[-1]
