"""Optimizer-step wall-clock: flat buffer vs the legacy dict loop.

Times the local-epoch hot path — repeated Adam steps over a deep MLP —
once with the flat-plane optimizer (one vectorized update over the
whole parameter buffer) and once with the per-``(layer, key)`` loop the
refactor replaced, reproduced verbatim below over detached arrays.
Verifies the two trajectories end bitwise identical and writes
``BENCH_train.json`` at the repo root.

Both paths are single-threaded elementwise NumPy, so the speedup floor
is asserted unconditionally — it does not depend on core count.  The
flat plane wins by replacing ~1000 small-array NumPy calls per step
(each with fixed dispatch overhead) with ~10 whole-buffer ones.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import Adam

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_train.json"

DEPTH = 24          # trainable layers -> 48 (key, layer) pairs
WIDTH = 32
STEPS = 400         # optimizer steps per timed run
REPEATS = 3         # best-of to damp scheduler noise
SPEEDUP_FLOOR = 1.3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _make_model() -> Model:
    rng = np.random.default_rng(0)
    layers = [Dense(WIDTH, WIDTH, rng) for _ in range(DEPTH)]
    return Model(layers, name="bench-train")


class _LegacyAdam:
    """The pre-refactor Adam: per-(layer, key) state and updates."""

    beta1, beta2, eps = 0.9, 0.999, 1e-8

    def __init__(self, params, grads, lr):
        self.params = params    # list of (idx, key, array)
        self.grads = grads      # {(idx, key): array}
        self.lr = lr
        self.state = {}
        self.steps = 0

    def step(self):
        self.steps += 1
        for idx, key, param in self.params:
            grad = self.grads[(idx, key)]
            m = self.state.setdefault((idx, key, "m"),
                                      np.zeros_like(param))
            v = self.state.setdefault((idx, key, "v"),
                                      np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / (1.0 - self.beta1 ** self.steps)
            v_hat = v / (1.0 - self.beta2 ** self.steps)
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def _prime_gradients(model: Model) -> None:
    """One real backward pass; the timed loops reuse its gradients."""
    rng = np.random.default_rng(1)
    x = rng.standard_normal((64, WIDTH))
    y = rng.integers(0, WIDTH, 64)
    model.loss_and_grad(x, y, SoftmaxCrossEntropy())


def _time_flat() -> tuple[float, np.ndarray]:
    best = float("inf")
    for _ in range(REPEATS):
        model = _make_model()
        _prime_gradients(model)
        optimizer = Adam(model, 0.01)
        start = time.perf_counter()
        for _ in range(STEPS):
            optimizer.step()
        best = min(best, time.perf_counter() - start)
        final = model.weights.buffer.copy()
    return best, final


def _time_legacy() -> tuple[float, np.ndarray]:
    best = float("inf")
    for _ in range(REPEATS):
        model = _make_model()
        _prime_gradients(model)
        # Detach: the legacy plane owned plain per-key arrays.
        params = [(idx, key, value.copy())
                  for idx, layer in enumerate(model.trainable)
                  for key, value in layer.params.items()]
        grads = {(idx, key): layer.grads[key].copy()
                 for idx, layer in enumerate(model.trainable)
                 for key in layer.params}
        optimizer = _LegacyAdam(params, grads, 0.01)
        start = time.perf_counter()
        for _ in range(STEPS):
            optimizer.step()
        best = min(best, time.perf_counter() - start)
        final = np.concatenate([p.ravel() for _, _, p in params])
    return best, final


@pytest.mark.bench
def test_flat_optimizer_step_speedup():
    flat_seconds, flat_final = _time_flat()
    legacy_seconds, legacy_final = _time_legacy()
    speedup = legacy_seconds / flat_seconds

    OUTPUT.write_text(json.dumps({
        "benchmark": "Adam step: flat buffer vs per-(layer,key) loop",
        "layers": DEPTH,
        "parameters": DEPTH * (WIDTH * WIDTH + WIDTH),
        "steps": STEPS,
        "repeats": REPEATS,
        "available_cores": _available_cores(),
        "legacy_seconds": round(legacy_seconds, 4),
        "flat_seconds": round(flat_seconds, 4),
        "speedup": round(speedup, 2),
    }, indent=2) + "\n")

    print()
    print(f"legacy {legacy_seconds:8.3f}s  "
          f"({DEPTH} layers, {STEPS} steps)")
    print(f"flat   {flat_seconds:8.3f}s")
    print(f"speedup{speedup:8.2f}x")

    # Same arithmetic, same order: the planes must agree bitwise.
    assert np.array_equal(flat_final, legacy_final), \
        "flat plane diverged from the legacy dict-plane reference"

    assert speedup >= SPEEDUP_FLOOR, \
        f"expected >= {SPEEDUP_FLOOR}x, measured {speedup:.2f}x"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
