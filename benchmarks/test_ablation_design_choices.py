"""Design-choice ablations (DESIGN.md §6) — beyond the paper's Fig. 11.

Three load-bearing choices in DINAR's design, each ablated on
Purchase100:

1. **Personalization** (§4.3): without restoring the private layer,
   clients train from the obfuscated global layer — privacy is
   unchanged (the upload is still obfuscated) but utility collapses.
2. **Obfuscation mode**: scale-matched vs plain-Gaussian random
   values — both reach ~50% AUC, the scale-matched variant keeps the
   protected model's losses bounded (the Fig. 3 behaviour).
3. **Robust aggregation** (extension): DINAR composes with
   coordinate-median-style defenses only through its non-obfuscated
   layers; here we check DINAR under FedProx-regularized local
   training still protects and trains.
"""

from benchmarks.conftest import emit
from repro.bench.harness import default_config
from repro.bench.reporting import format_table
from repro.core.dinar import DINAR
from repro.fl.config import FLConfig


def test_ablation_personalization(cells, results_dir, benchmark):
    def regenerate():
        return {
            "dinar": cells.get("purchase100", "dinar", attack="yeom"),
            "no-personalization": cells.get(
                "purchase100", DINAR(personalize=False), attack="yeom"),
            "none": cells.get("purchase100", "none", attack="yeom"),
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [name, f"{100 * r.local_auc:.1f}",
         f"{100 * r.client_accuracy:.1f}"]
        for name, r in results.items()
    ]
    table = format_table(
        ["variant", "local AUC %", "client acc %"],
        rows, title="Ablation: personalization (purchase100)")
    emit(results_dir, "ablation_personalization", table)

    # privacy holds either way (the upload is obfuscated regardless)
    assert results["no-personalization"].local_auc < 0.58
    # but without personalization utility collapses
    assert results["no-personalization"].client_accuracy \
        < results["dinar"].client_accuracy - 0.15


def test_ablation_obfuscation_mode(cells, results_dir, benchmark):
    def regenerate():
        return {
            "scaled": cells.get("purchase100", "dinar", attack="yeom"),
            "gaussian": cells.get(
                "purchase100",
                DINAR(obfuscation="gaussian", obfuscation_scale=1.0),
                attack="yeom"),
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [mode, f"{100 * r.local_auc:.1f}",
         f"{100 * r.client_accuracy:.1f}"]
        for mode, r in results.items()
    ]
    table = format_table(
        ["obfuscation", "local AUC %", "client acc %"],
        rows, title="Ablation: obfuscation mode (purchase100)")
    emit(results_dir, "ablation_obfuscation", table)

    for r in results.values():
        assert r.local_auc < 0.58
    # personalization makes utility independent of the noise mode
    assert abs(results["scaled"].client_accuracy
               - results["gaussian"].client_accuracy) < 0.05


def test_ablation_fedprox_composition(cells, results_dir, benchmark):
    """DINAR composes with FedProx-regularized local training."""
    base = default_config("purchase100")

    def regenerate():
        prox_config = FLConfig(
            num_clients=base.num_clients, rounds=base.rounds,
            local_epochs=base.local_epochs, lr=base.lr,
            batch_size=base.batch_size, seed=base.seed,
            eval_every=base.rounds, proximal_mu=0.01)
        return {
            "dinar": cells.get("purchase100", "dinar", attack="yeom"),
            "dinar+fedprox": cells.get(
                "purchase100", "dinar", attack="yeom",
                config=prox_config),
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rows = [
        [name, f"{100 * r.local_auc:.1f}",
         f"{100 * r.client_accuracy:.1f}"]
        for name, r in results.items()
    ]
    table = format_table(
        ["variant", "local AUC %", "client acc %"],
        rows, title="Ablation: DINAR + FedProx (purchase100)")
    emit(results_dir, "ablation_fedprox", table)

    prox = results["dinar+fedprox"]
    assert prox.local_auc < 0.58
    assert prox.client_accuracy > 0.3
