"""Train-step wall-clock: float32 vs float64 compute plane.

Times the local-training hot path — full forward + backward + optimizer
step — on the two model families the paper leans on (the VGG-style conv
net and the Purchase100 FCNN) at both precisions, and writes
``BENCH_precision.json`` at the repo root.

float32 halves every array's memory traffic through the im2col matmuls
and the elementwise update, so the conv model is expected to clear the
floor comfortably; both paths are single-threaded NumPy, so the ratio
does not depend on core count.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.models.fcnn import build_fcnn
from repro.models.vgg import build_vgg_small
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.model import Model
from repro.nn.optim import SGD

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_precision.json"

REPEATS = 3         # best-of to damp scheduler noise
SPEEDUP_FLOOR = 1.3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _conv_model(dtype: str) -> tuple[Model, np.ndarray, np.ndarray]:
    """VGG-style conv net on image batches (the gtsrb/celeba family)."""
    model = build_vgg_small((3, 16, 16), 43, np.random.default_rng(0),
                            dtype=dtype)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((128, 3, 16, 16)).astype(dtype)
    y = rng.integers(0, 43, 128)
    return model, x, y


def _fcnn_model(dtype: str) -> tuple[Model, np.ndarray, np.ndarray]:
    """The purchase100-shaped FCNN (600 features, 100 classes)."""
    model = build_fcnn(600, 100, np.random.default_rng(0), dtype=dtype)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((256, 600)).astype(dtype)
    y = rng.integers(0, 100, 256)
    return model, x, y


MODELS = {"conv": (_conv_model, 20), "fcnn": (_fcnn_model, 30)}


def _time_train_steps(factory, dtype: str, steps: int) -> float:
    """Best-of-``REPEATS`` seconds for ``steps`` full train steps."""
    loss = SoftmaxCrossEntropy()
    best = float("inf")
    for _ in range(REPEATS):
        model, x, y = factory(dtype)
        optimizer = SGD(model, 0.01)
        model.loss_and_grad(x, y, loss)  # warm up allocations
        optimizer.step()
        start = time.perf_counter()
        for _ in range(steps):
            model.loss_and_grad(x, y, loss)
            optimizer.step()
        best = min(best, time.perf_counter() - start)
        assert model.weights.buffer.dtype == np.dtype(dtype)
    return best


@pytest.mark.bench
def test_float32_train_step_speedup():
    results = {}
    for name, (factory, steps) in MODELS.items():
        f64 = _time_train_steps(factory, "float64", steps)
        f32 = _time_train_steps(factory, "float32", steps)
        results[name] = {
            "steps": steps,
            "float64_seconds": round(f64, 4),
            "float32_seconds": round(f32, 4),
            "speedup": round(f64 / f32, 2),
        }

    OUTPUT.write_text(json.dumps({
        "benchmark": "forward+backward+step: float32 vs float64",
        "repeats": REPEATS,
        "available_cores": _available_cores(),
        "models": results,
    }, indent=2) + "\n")

    print()
    for name, row in results.items():
        print(f"{name:5s} float64 {row['float64_seconds']:8.3f}s  "
              f"float32 {row['float32_seconds']:8.3f}s  "
              f"speedup {row['speedup']:5.2f}x")

    # The conv model is the memory-bound one the issue gates on; the
    # fcnn number is reported but not asserted (small matmuls can be
    # dispatch-bound on tiny runners).
    conv_speedup = results["conv"]["speedup"]
    assert conv_speedup >= SPEEDUP_FLOOR, \
        f"expected >= {SPEEDUP_FLOOR}x on conv, measured {conv_speedup:.2f}x"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q", "-m", "bench"])
