"""Fig. 5 — obfuscating more than one layer (Purchase100, 6+1-layer
FCNN): privacy is already optimal with a single layer; each additional
obfuscated layer only costs utility.

Paper values: attack AUC stays at 50% for every set {5}, {4,5}, ...,
{1..6}; model accuracy decreases monotonically as more layers are
obfuscated.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.core.dinar import DINAR

#: Layer sets exactly as in Fig. 5 (1-based labels in the paper; the
#: FCNN's penultimate trainable layer is index 5 here).
LAYER_SETS = [
    ("5", 5, ()),
    ("4-5", 5, (4,)),
    ("3-4-5", 5, (3, 4)),
    ("2-3-4-5", 5, (2, 3, 4)),
    ("1-2-3-4-5", 5, (1, 2, 3, 4)),
    ("1-2-3-4-5-6", 5, (1, 2, 3, 4, 6)),
]

PAPER_AUC = [50, 50, 50, 50, 50, 50]


def test_fig5_multi_layer(cells, results_dir, benchmark):
    def regenerate():
        out = {}
        for label, p, extra in LAYER_SETS:
            out[label] = cells.get(
                "purchase100",
                DINAR(private_layer=p, extra_layers=extra),
                attack="yeom")
        return out

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for (label, *_), paper_auc in zip(LAYER_SETS, PAPER_AUC):
        r = results[label]
        rows.append([label, paper_auc, f"{100 * r.local_auc:.1f}",
                     f"{100 * r.client_accuracy:.1f}"])
    table = format_table(
        ["obfuscated layers", "paper AUC", "ours AUC", "ours acc %"],
        rows, title="Fig.5 multi-layer obfuscation - purchase100")
    emit(results_dir, "fig5_multi_layer", table)

    # privacy already optimal with one layer; more layers don't help
    for label, *_ in LAYER_SETS:
        assert results[label].local_auc < 0.58
    # more obfuscated layers cost utility: the full set is clearly
    # worse than the single penultimate layer
    single = results["5"].client_accuracy
    full = results["1-2-3-4-5-6"].client_accuracy
    assert full < single - 0.03
