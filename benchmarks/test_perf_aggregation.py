"""Aggregation throughput: nested-dict FedAvg vs the flat weight plane.

Times the seed implementation (:func:`fedavg_reference`, a Python walk
over ``list[dict[str, ndarray]]`` updates) against the store-native
reduction over a collected :class:`UpdateBatch` matrix at 10/50/100
clients on two FCNN sizes, verifies the two paths agree to within
2 ULP (einsum's FMA contraction can round single coordinates 1 ULP
away from the sequential reference), and writes
``BENCH_aggregation.json`` at the repo root.

Cohort updates land in the pooled matrix as they arrive (one row copy
per upload, amortized across the round — reported separately as
``collect_seconds``); the aggregation step both paths are timed on
starts from updates already received in their native container: a list
of nested structures for the legacy walk, the filled matrix for the
store path.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.fl.aggregation import UpdateBatch, fedavg, fedavg_reference
from repro.models.fcnn import DEFAULT_HIDDEN, build_fcnn
from repro.nn.store import WeightStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_aggregation.json"

CLIENT_COUNTS = (10, 50, 100)
REPEATS = 5

#: (name, input_dim, num_classes, hidden widths)
CONFIGS = (
    ("fcnn-small", 100, 100, (64, 64, 64)),
    ("fcnn-purchase100", 600, 100, DEFAULT_HIDDEN),
)


def _best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _make_cohort(template: WeightStore, num_clients: int, rng):
    """Per-client updates in both representations (same values)."""
    stores = [
        WeightStore(template.layout,
                    rng.standard_normal(template.num_params))
        for _ in range(num_clients)
    ]
    nested = [store.to_layers() for store in stores]
    samples = [int(n) for n in rng.integers(20, 200, size=num_clients)]
    return stores, nested, samples


def _collect(batch: UpdateBatch, stores) -> UpdateBatch:
    """What the upload path does as each client's update arrives."""
    batch.reset()
    for store in stores:
        batch.add(store)
    return batch


@pytest.mark.bench
def test_store_fedavg_beats_nested_walk():
    rng = np.random.default_rng(0)
    entries = []
    for name, input_dim, num_classes, hidden in CONFIGS:
        model = build_fcnn(input_dim, num_classes,
                           np.random.default_rng(0), hidden=hidden)
        template = model.get_store()
        batch = UpdateBatch(template.layout,
                            capacity=max(CLIENT_COUNTS))
        for num_clients in CLIENT_COUNTS:
            stores, nested, samples = _make_cohort(
                template, num_clients, rng)

            old = fedavg_reference(nested, samples)
            new = fedavg(_collect(batch, stores), samples)
            np.testing.assert_array_almost_equal_nulp(
                new.buffer,
                WeightStore.from_layers(old, template.layout).buffer,
                nulp=2)

            collect_seconds = _best_of(_collect, batch, stores)
            legacy_seconds = _best_of(fedavg_reference, nested, samples)
            store_seconds = _best_of(fedavg, batch, samples)
            entries.append({
                "model": name,
                "params": template.num_params,
                "clients": num_clients,
                "legacy_seconds": round(legacy_seconds, 6),
                "store_seconds": round(store_seconds, 6),
                "collect_seconds": round(collect_seconds, 6),
                "speedup": round(legacy_seconds / store_seconds, 2),
            })

    OUTPUT.write_text(json.dumps({
        "benchmark": "fedavg: nested dict walk vs flat-plane reduction",
        "repeats": REPEATS,
        "entries": entries,
    }, indent=2) + "\n")

    print()
    print(f"{'model':<20}{'params':>9}{'clients':>9}"
          f"{'legacy':>11}{'store':>11}{'speedup':>9}")
    for e in entries:
        print(f"{e['model']:<20}{e['params']:>9}{e['clients']:>9}"
              f"{e['legacy_seconds']:>11.4f}{e['store_seconds']:>11.4f}"
              f"{e['speedup']:>8.1f}x")

    at_50 = [e["speedup"] for e in entries if e["clients"] == 50]
    assert max(at_50) >= 3.0, \
        f"expected >=3x at 50 clients, measured {at_50}"
    assert all(e["speedup"] > 1.0 for e in entries), \
        "store path should never be slower than the nested walk"


if __name__ == "__main__":
    pytest.main([__file__, "-s", "-q"])
