"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure of the paper: it runs the
relevant (dataset, defense) cells through the harness, prints the
paper-reported values next to the measured ones, writes the table to
``results/``, and asserts the reproduction *shape* (who wins, roughly
by how much).  Cells are memoized per session so figures that share
runs (Fig. 6 and Fig. 7, for instance) pay for them once.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.harness import ExperimentResult, run_experiment

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


class CellCache:
    """Memoizes harness runs keyed by their full parameterization."""

    def __init__(self) -> None:
        self._cells: dict[tuple, ExperimentResult] = {}

    def get(self, dataset: str, defense: str, **kwargs) -> ExperimentResult:
        key = (dataset, defense,
               tuple(sorted((k, repr(v)) for k, v in kwargs.items())))
        if key not in self._cells:
            self._cells[key] = run_experiment(dataset, defense, **kwargs)
        return self._cells[key]


@pytest.fixture(scope="session")
def cells() -> CellCache:
    return CellCache()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, table: str) -> None:
    """Print a result table and persist it under results/."""
    print()
    print(table)
    (results_dir / f"{name}.txt").write_text(table + "\n")
