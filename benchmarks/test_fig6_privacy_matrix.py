"""Fig. 6 — attack AUC for 7 defense scenarios x 6 datasets, against
both the global model and the clients' local (transmitted) models.

Paper shape to reproduce:
* No defense leaks (AUC well above 50) wherever the model overfits.
* DINAR reaches ~50 on BOTH global and local models, everywhere.
* SA protects local models (~50) but leaves the global model exactly
  as leaky as no defense.
* WDP barely helps; DP methods help but inconsistently.
"""

import pytest

from benchmarks.conftest import emit
from repro.bench.reporting import format_table

DEFENSES = ["none", "wdp", "ldp", "cdp", "gc", "sa", "dinar"]

#: Paper-reported attack AUC (%), Fig. 6 (a)-(l).
PAPER = {
    "purchase100": {"global": [76, 59, 50, 50, 50, 75, 50],
                    "local": [78, 75, 50, 50, 55, 50, 50]},
    "cifar10": {"global": [64, 58, 52, 54, 60, 66, 50],
                "local": [66, 63, 55, 56, 60, 50, 50]},
    "cifar100": {"global": [63, 54, 62, 57, 55, 61, 50],
                 "local": [64, 64, 61, 52, 58, 50, 50]},
    "speech_commands": {"global": [57, 56, 52, 50, 50, 57, 50],
                        "local": [58, 56, 51, 50, 55, 50, 50]},
    "celeba": {"global": [62, 51, 52, 52, 52, 61, 50],
               "local": [57, 52, 52, 54, 52, 50, 50]},
    "gtsrb": {"global": [53, 52, 52, 52, 50, 51, 50],
              "local": [53, 53, 52, 52, 52, 50, 50]},
}


@pytest.mark.parametrize("dataset", sorted(PAPER))
def test_fig6_dataset(dataset, cells, results_dir, benchmark):
    def regenerate():
        return {d: cells.get(dataset, d, attack="yeom") for d in DEFENSES}

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for i, name in enumerate(DEFENSES):
        r = results[name]
        rows.append([
            name,
            PAPER[dataset]["global"][i], f"{100 * r.global_auc:.1f}",
            PAPER[dataset]["local"][i], f"{100 * r.local_auc:.1f}",
            f"{100 * r.client_accuracy:.1f}",
        ])
    table = format_table(
        ["defense", "paper g-AUC", "ours g-AUC", "paper l-AUC",
         "ours l-AUC", "ours acc%"],
        rows, title=f"Fig.6 privacy matrix - {dataset}")
    emit(results_dir, f"fig6_{dataset}", table)

    none, dinar, sa = results["none"], results["dinar"], results["sa"]
    # DINAR reaches (near-)optimal AUC on both sides
    assert dinar.global_auc < 0.58
    assert dinar.local_auc < 0.58
    # DINAR strictly improves on no defense wherever there is a leak
    if none.local_auc > 0.60:
        assert dinar.local_auc < none.local_auc
    # SA: global as leaky as none, local protected
    assert abs(sa.global_auc - none.global_auc) < 0.03
    assert sa.local_auc <= none.local_auc + 0.02
    # DINAR keeps client utility near (or above) the baseline
    assert dinar.client_accuracy >= none.client_accuracy - 0.05
