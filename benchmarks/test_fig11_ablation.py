"""Fig. 11 — ablation: DINAR's adaptive training (Adagrad) vs DINAR
with Adam / ADGD / AdaMax (Purchase100).

Paper values: Adam 59%, ADGD 59%, AdaMax 60%, DINAR-Adagrad 62%
accuracy; all variants give the same 50% attack AUC.
"""

from benchmarks.conftest import emit
from repro.bench.reporting import format_table
from repro.core.dinar import DINAR

#: (label, optimizer, learning rate) — adaptive methods at our scale
#: need per-family rates; these are each variant's tuned value.
VARIANTS = [
    ("w/ Adam", "adam", 0.003),
    ("w/ ADGD", "adgd", 0.3),
    ("w/ AdaMax", "adamax", 0.003),
    ("DINAR (Adagrad)", "adagrad", 0.005),
]

PAPER_ACC = {"w/ Adam": 59, "w/ ADGD": 59, "w/ AdaMax": 60,
             "DINAR (Adagrad)": 62}


def test_fig11_optimizer_ablation(cells, results_dir, benchmark):
    def regenerate():
        return {
            label: cells.get(
                "purchase100",
                DINAR(optimizer=optimizer, lr=lr),
                attack="yeom")
            for label, optimizer, lr in VARIANTS
        }

    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for label, *_ in VARIANTS:
        r = results[label]
        rows.append([label, PAPER_ACC[label],
                     f"{100 * r.client_accuracy:.1f}",
                     f"{100 * r.local_auc:.1f}"])
    table = format_table(
        ["variant", "paper acc %", "ours acc %", "ours local AUC %"],
        rows, title="Fig.11 optimizer ablation - purchase100")
    emit(results_dir, "fig11_ablation", table)

    # all optimization variants provide the same privacy level (~50%)
    for label, *_ in VARIANTS:
        assert results[label].local_auc < 0.58
    # every variant trains a usable model
    for label, *_ in VARIANTS:
        assert results[label].client_accuracy > 0.25
