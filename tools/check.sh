#!/usr/bin/env sh
# Repo gate: lint (when ruff is installed) + the tier-1 test suite.
#
# Usage: tools/check.sh [extra pytest args]
# Run from anywhere; paths resolve relative to the repo root.

set -eu

root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root"

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks tools
    echo "== ruff format (check only) =="
    ruff format --check src tests benchmarks tools
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH="$root/src" python -m pytest -x -q "$@"
