"""Regenerate the golden trajectory fixture.

Runs every recipe in ``tests/fl/trajectory_recipes.py`` and writes the
resulting vectors to ``tests/fixtures/trajectory_pins.npz``.  The
committed fixture was produced by the dict-plane training path (the
commit *before* the flat parameter plane landed); regenerating it on
newer code only re-pins the current behaviour, so do that deliberately
— e.g. after an intentional numeric change — never to silence a
trajectory-pin failure you don't understand.

Usage::

    PYTHONPATH=src:tests python tools/gen_trajectory_pins.py
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from tests.fl.trajectory_recipes import build_recipes  # noqa: E402

OUTPUT = REPO_ROOT / "tests" / "fixtures" / "trajectory_pins.npz"


def main() -> None:
    arrays: dict[str, np.ndarray] = {}
    for name, recipe in build_recipes().items():
        vector = recipe()
        assert vector.dtype == np.float64 and vector.ndim == 1, name
        assert np.isfinite(vector).all(), f"{name}: non-finite pin"
        arrays[name] = vector
        print(f"{name:32s} {vector.size:6d} values  "
              f"l2={float(np.sqrt((vector ** 2).sum())):.6g}")
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(OUTPUT, **arrays)
    print(f"wrote {OUTPUT} ({OUTPUT.stat().st_size} bytes, "
          f"{len(arrays)} pins)")


if __name__ == "__main__":
    main()
