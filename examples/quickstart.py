"""Quickstart: protect a federated learning run with DINAR.

Runs the same FL task twice — undefended and protected by DINAR — and
compares what a membership-inference attacker achieves against each,
plus what the clients' models are worth.

    python examples/quickstart.py
"""

from repro import quick_experiment


def main() -> None:
    print("Training an undefended FL model (Purchase100 stand-in)...")
    baseline = quick_experiment("purchase100", "none", attack="yeom")

    print("Training the same task under DINAR...")
    protected = quick_experiment("purchase100", "dinar", attack="yeom")

    print()
    print(f"{'':>12s} {'attack AUC (local)':>20s} {'client accuracy':>16s}")
    for label, result in (("no defense", baseline), ("DINAR", protected)):
        print(f"{label:>12s} {100 * result.local_auc:>19.1f}% "
              f"{100 * result.client_accuracy:>15.1f}%")
    print()
    print("An attack AUC of 50% is the optimum — a random guesser.")
    print(f"DINAR cut the attacker from {100 * baseline.local_auc:.0f}% "
          f"to {100 * protected.local_auc:.0f}% while keeping the "
          "clients' personalized models useful.")


if __name__ == "__main__":
    main()
