"""Watch membership leakage grow round by round — and DINAR stop it.

Runs the same federated task twice, attacking the clients' uploads
after every round, and prints the two leakage trajectories side by
side as a text chart.

    python examples/leakage_over_time.py
"""

import numpy as np

from repro.analysis.leakage_over_time import leakage_over_training
from repro.bench.harness import make_model_factory
from repro.core.dinar import DINAR
from repro.data import load_dataset, split_for_membership
from repro.fl import FederatedSimulation, FLConfig
from repro.privacy.attacks.threshold import LossThresholdAttack

ROUNDS = 12


def bar(value: float, lo: float = 50.0, hi: float = 90.0,
        width: int = 36) -> str:
    """Text bar for an AUC percentage."""
    filled = int(width * max(0.0, min(1.0, (value - lo) / (hi - lo))))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    dataset = load_dataset("purchase100", 0)
    split = split_for_membership(dataset, np.random.default_rng((0, 17)))
    factory = make_model_factory("purchase100")
    config = FLConfig(num_clients=10, rounds=ROUNDS, local_epochs=3,
                      lr=0.1, batch_size=64, seed=0, eval_every=ROUNDS)
    attack = LossThresholdAttack()

    print("running the unprotected federation...")
    unprotected = leakage_over_training(
        FederatedSimulation(split, factory, config), attack,
        max_samples=250)
    print("running the DINAR-protected federation...")
    protected = leakage_over_training(
        FederatedSimulation(split, factory, config, DINAR(lr=0.005)),
        attack, max_samples=250)

    print()
    print("attack AUC against client uploads, per round "
          "(50% = optimal defense)")
    print(f"{'round':>5s}  {'no defense':>10s} "
          f"{'':36s}  {'DINAR':>6s}")
    for base, dinar in zip(unprotected.points, protected.points):
        print(f"{base.round_index:>5d}  "
              f"{100 * base.local_auc:>9.1f}% "
              f"|{bar(100 * base.local_auc)}|  "
              f"{100 * dinar.local_auc:>5.1f}% "
              f"|{bar(100 * dinar.local_auc)}|")
    print()
    print("every round of unprotected training memorizes the members "
          "a little harder; DINAR's uploads never expose them.")


if __name__ == "__main__":
    main()
