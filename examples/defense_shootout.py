"""Defense shoot-out: compare all seven defense scenarios on one task.

Reproduces a single column of the paper's evaluation interactively:
for each defense, report attack AUC against the global model and the
clients' uploads, client model accuracy, and measured costs.

    python examples/defense_shootout.py [dataset]

``dataset`` defaults to cifar10; any of repro.data.available_datasets()
works.
"""

import sys

from repro.bench.harness import run_experiment
from repro.bench.reporting import format_table
from repro.data import available_datasets

DEFENSES = ["none", "wdp", "ldp", "cdp", "gc", "sa", "dinar"]


def main(dataset: str = "cifar10") -> None:
    if dataset not in available_datasets():
        raise SystemExit(f"unknown dataset {dataset!r}; "
                         f"pick one of {available_datasets()}")
    rows = []
    for defense in DEFENSES:
        print(f"running {defense} on {dataset}...")
        result = run_experiment(dataset, defense, attack="yeom")
        costs = result.costs
        rows.append([
            defense,
            f"{100 * result.global_auc:.1f}",
            f"{100 * result.local_auc:.1f}",
            f"{100 * result.client_accuracy:.1f}",
            f"{costs.train_seconds_per_round:.3f}s",
            f"{costs.aggregate_seconds_per_round * 1000:.1f}ms",
        ])
    print()
    print(format_table(
        ["defense", "global AUC %", "local AUC %", "client acc %",
         "train/round", "aggregate/round"],
        rows, title=f"Defense comparison on {dataset} "
                    "(attack AUC: 50% is optimal)"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cifar10")
