"""Layer-leakage analysis: reproduce the paper's §3 motivation study.

Trains an undefended FL model, then measures — per layer — the
Jensen-Shannon divergence between the gradients induced by member
samples and by non-member samples, plus the AUC a white-box attacker
gets from each layer's per-sample gradient norms.  This is the
analysis DINAR's initialization phase runs at each client.

    python examples/layer_leakage_analysis.py [dataset]
"""

import sys

import numpy as np

from repro.bench.harness import run_experiment
from repro.bench.reporting import format_table
from repro.core.sensitivity import layer_divergences
from repro.privacy.attacks.gradient import (
    per_example_layer_gradient_norms,
)
from repro.privacy.attacks.metrics import attack_auc


def main(dataset: str = "purchase100") -> None:
    print(f"training an unprotected FL model on {dataset}...")
    result = run_experiment(dataset, "none", attack="yeom")
    simulation = result.simulation
    model = simulation.global_model()
    split = simulation.split

    print("measuring per-layer member/non-member divergence...")
    sensitivity = layer_divergences(
        model, split.members.x, split.members.y,
        split.nonmembers.x, split.nonmembers.y,
        rng=np.random.default_rng(0), max_samples=200)

    rng = np.random.default_rng(1)
    m_idx = rng.choice(len(split.members), 120, replace=False)
    n_idx = rng.choice(len(split.nonmembers),
                       min(120, len(split.nonmembers)), replace=False)
    member_norms = per_example_layer_gradient_norms(
        model, split.members.x[m_idx], split.members.y[m_idx])
    nonmember_norms = per_example_layer_gradient_norms(
        model, split.nonmembers.x[n_idx], split.nonmembers.y[n_idx])

    rows = []
    for idx, name, divergence in sensitivity.as_rows():
        auc = attack_auc(-member_norms[:, idx], -nonmember_norms[:, idx])
        marker = " <-- most sensitive" \
            if idx == sensitivity.most_sensitive_layer else ""
        rows.append([idx, name, f"{divergence:.4f}",
                     f"{100 * auc:.1f}%{marker}"])
    print()
    print(format_table(
        ["layer", "name", "JS divergence (debiased)",
         "white-box gradient-attack AUC"],
        rows, title=f"Layer-level membership leakage - {dataset}"))
    print()
    print(f"DINAR would obfuscate layer "
          f"{sensitivity.most_sensitive_layer} "
          f"({sensitivity.layer_names[sensitivity.most_sensitive_layer]}).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "purchase100")
