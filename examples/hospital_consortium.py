"""Cross-silo scenario: a hospital consortium (Texas100 stand-in).

The paper motivates DINAR with cross-silo deployments — hospitals
collaboratively training a diagnosis model must not let any silo (or
the aggregation server) infer whether a specific patient's record was
used for training.  This example walks the full DINAR lifecycle:

1. each hospital measures which model layer leaks the most membership
   information on its own data (§3 analysis);
2. the hospitals run the Byzantine-tolerant vote to agree on the layer
   to obfuscate — here one hospital is compromised and votes
   erratically (§4.1);
3. federated training runs with DINAR protecting every upload;
4. a server-side attacker (Shokri-style shadow models trained on
   look-alike public data) attacks each hospital's uploaded model.

    python examples/hospital_consortium.py
"""

import numpy as np

from repro import FederatedSimulation, FLConfig, ShadowAttack
from repro.bench.harness import make_model_factory
from repro.core.dinar import DINAR, dinar_initialization
from repro.data import load_dataset, split_for_membership
from repro.privacy.attacks.metrics import local_models_auc

NUM_HOSPITALS = 5


def main() -> None:
    rng = np.random.default_rng(7)
    records = load_dataset("texas100", rng, n_samples=4000)
    split = split_for_membership(records, rng)
    factory = make_model_factory("texas100")

    # --- 1 + 2: DINAR initialization with one compromised hospital ---
    print("Phase 1: per-hospital layer-sensitivity analysis + vote")
    per_hospital = np.array_split(np.arange(len(split.members)),
                                  NUM_HOSPITALS)
    init = dinar_initialization(
        factory,
        [split.members.subset(idx) for idx in per_hospital],
        warmup_epochs=3, lr=0.005, batch_size=64,
        byzantine={4: "equivocate"},  # hospital 4 is compromised
        seed=7)
    for hospital, sensitivity in init.per_client_sensitivity.items():
        flag = " (compromised voter)" if hospital == 4 else ""
        print(f"  hospital {hospital}: proposes layer "
              f"{sensitivity.most_sensitive_layer}{flag}")
    print(f"  consensus: obfuscate layer {init.private_layer} "
          f"(honest agreement: {init.consensus.honest_agreement})")

    # --- 3: federated training under DINAR ---
    print("\nPhase 2: federated training (5 hospitals)")
    config = FLConfig(num_clients=NUM_HOSPITALS, rounds=12,
                      local_epochs=3, lr=0.1, batch_size=64, seed=7,
                      eval_every=4)
    simulation = FederatedSimulation(
        split, factory, config,
        DINAR(private_layer=init.private_layer))
    for record in simulation.run().records:
        print(f"  round {record.round_index:2d}: mean hospital model "
              f"accuracy {100 * record.mean_client_accuracy:.1f}%")

    # --- 4: the server attacks each hospital's uploaded model ---
    print("\nPhase 3: server-side shadow-model attack on uploads")
    attack = ShadowAttack(factory, num_shadows=2, epochs=6, seed=7)
    attack.fit(split.attacker)
    auc = local_models_auc(attack, simulation, max_samples=300)
    print(f"  mean attack AUC over hospital uploads: {100 * auc:.1f}% "
          "(50% = attacker reduced to guessing)")


if __name__ == "__main__":
    main()
