"""Non-IID scenario: banks with skewed customer bases (GTSRB-style
image task repurposed as a document classifier).

Cross-silo participants rarely hold IID data: a regional bank sees a
skewed slice of customer behaviour.  This example sweeps the Dirichlet
alpha of the client partition and shows the paper's §5.8 finding:
DINAR's privacy protection is independent of the skew, while the
undefended model leaks more the closer the data is to IID (the shadow
attacker learns better on such data).

    python examples/noniid_banking.py
"""

import math

from repro.bench.harness import run_experiment
from repro.bench.reporting import format_table

ALPHAS = [0.8, 2.0, 5.0, math.inf]


def main() -> None:
    rows = []
    for alpha in ALPHAS:
        label = "IID" if math.isinf(alpha) else f"alpha={alpha}"
        print(f"running {label}...")
        baseline = run_experiment("gtsrb", "none", attack="yeom",
                                  dirichlet_alpha=alpha)
        protected = run_experiment("gtsrb", "dinar", attack="yeom",
                                   dirichlet_alpha=alpha)
        rows.append([
            label,
            f"{100 * baseline.local_auc:.1f}",
            f"{100 * protected.local_auc:.1f}",
            f"{100 * baseline.client_accuracy:.1f}",
            f"{100 * protected.client_accuracy:.1f}",
        ])
    print()
    print(format_table(
        ["distribution", "no-defense AUC %", "DINAR AUC %",
         "no-defense acc %", "DINAR acc %"],
        rows,
        title="Privacy and utility across non-IID settings (GTSRB)"))
    print()
    print("DINAR holds ~50% attack AUC regardless of the data skew.")


if __name__ == "__main__":
    main()
