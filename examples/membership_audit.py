"""Privacy audit: measure a deployed model's membership leakage.

Uses the library as an auditing tool rather than a simulator: given a
trained model, the data it was trained on, held-out data, and some
population data, run the full attacker suite and report each
attacker's AUC plus the stricter TPR at 1% FPR.

    python examples/membership_audit.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.data import load_dataset, split_for_membership
from repro.data.loader import iterate_batches
from repro.models import build_fcnn
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.optim import SGD
from repro.privacy.attacks import (
    EntropyThresholdAttack,
    LossThresholdAttack,
    ReferenceCalibratedAttack,
    ShadowAttack,
    attack_auc,
    tpr_at_fpr,
)


def train_the_model_under_audit(members, rng):
    """Stand-in for 'a model someone handed us': an overfit classifier."""
    model = build_fcnn(600, 100, np.random.default_rng(1),
                       hidden=(128, 64))
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(model, 0.15)
    for _ in range(25):
        for bx, by in iterate_batches(members.x, members.y, 64, rng):
            model.loss_and_grad(bx, by, loss)
            optimizer.step()
    return model


def main() -> None:
    rng = np.random.default_rng(11)
    population = load_dataset("purchase100", rng, n_samples=4000)
    split = split_for_membership(population, rng)

    print("training the model under audit...")
    model = train_the_model_under_audit(split.members, rng)

    def factory(model_rng):
        return build_fcnn(600, 100, model_rng, hidden=(128, 64))

    attackers = {
        "loss threshold (Yeom)": LossThresholdAttack(),
        "modified entropy (Song & Mittal)": EntropyThresholdAttack(),
        "shadow models (Shokri)": ShadowAttack(
            factory, num_shadows=2, epochs=10, lr=0.15,
            seed=3).fit(split.attacker),
        "calibrated (Watson)": ReferenceCalibratedAttack(
            factory, num_references=3, epochs=10, lr=0.15,
            seed=3).fit(split.attacker),
    }

    idx = rng.choice(len(split.members), 400, replace=False)
    member_x, member_y = split.members.x[idx], split.members.y[idx]
    nonmember_x, nonmember_y = split.nonmembers.x, split.nonmembers.y

    rows = []
    worst_auc = 0.0
    for name, attack in attackers.items():
        print(f"running {name}...")
        m_scores = attack.score(model, member_x, member_y)
        n_scores = attack.score(model, nonmember_x, nonmember_y)
        auc = attack_auc(m_scores, n_scores)
        low_fpr_tpr = tpr_at_fpr(m_scores, n_scores, max_fpr=0.01)
        worst_auc = max(worst_auc, auc)
        rows.append([name, f"{100 * auc:.1f}%",
                     f"{100 * low_fpr_tpr:.1f}%"])

    print()
    print(format_table(
        ["attacker", "attack AUC", "TPR @ 1% FPR"],
        rows, title="Membership-leakage audit"))
    print()
    verdict = "LEAKING" if worst_auc > 0.6 else \
        "acceptable (near the 50% optimum)"
    print(f"audit verdict: worst-case attacker AUC "
          f"{100 * worst_auc:.1f}% -> {verdict}")
    print("(defend the federated version of this pipeline with "
          "repro.core.DINAR)")


if __name__ == "__main__":
    main()
